package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// traceShape is the subset of the Chrome trace-event format the smoke
// test validates.
type traceShape struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string      `json:"name"`
		Ph   string      `json:"ph"`
		Ts   json.Number `json:"ts"`
		Dur  json.Number `json:"dur"`
	} `json:"traceEvents"`
}

// TestTraceSmoke is the CI smoke test (it runs under -short): a tokenb
// 16-processor point with -trace must emit valid trace-event JSON whose
// complete-span count equals the run's misses metric.
func TestTraceSmoke(t *testing.T) {
	file := filepath.Join(t.TempDir(), "point.json")
	var out, errw bytes.Buffer
	args := []string{"-protocol", "tokenb", "-topo", "torus", "-workload", "oltp",
		"-procs", "16", "-ops", "300", "-warmup", "300", "-seeds", "1",
		"-trace", file, "-columns", "misses"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || lines[0] != "misses" {
		t.Fatalf("-columns misses output wrong:\n%s", out.String())
	}
	misses, err := strconv.Atoi(lines[1])
	if err != nil || misses == 0 {
		t.Fatalf("misses row = %q", lines[1])
	}

	b, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var tr traceShape
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", tr.DisplayTimeUnit)
	}
	spans := 0
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
		case "X":
			spans++
			if ev.Dur == "" {
				t.Errorf("complete span %q lacks dur", ev.Name)
			}
			fallthrough
		case "B", "i":
			if ev.Ts == "" {
				t.Errorf("event %q (%s) lacks ts", ev.Name, ev.Ph)
			}
		default:
			t.Errorf("unexpected event phase %q in %q", ev.Ph, ev.Name)
		}
	}
	if spans != misses {
		t.Errorf("trace has %d complete spans, misses metric is %d", spans, misses)
	}
}

// TestTraceMultiSeed checks several seeds write one trace each with a
// -seedN suffix before the extension.
func TestTraceMultiSeed(t *testing.T) {
	base := filepath.Join(t.TempDir(), "run.json")
	var out, errw bytes.Buffer
	args := []string{"-protocol", "tokenb", "-workload", "oltp",
		"-procs", "4", "-ops", "150", "-warmup", "150", "-seeds", "1,2",
		"-trace", base, "-columns", "seed,misses"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base); err == nil {
		t.Errorf("multi-seed run wrote the unsuffixed base file")
	}
	for _, seed := range []string{"1", "2"} {
		name := strings.TrimSuffix(base, ".json") + "-seed" + seed + ".json"
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("seed %s trace: %v", seed, err)
		}
		var tr traceShape
		if err := json.Unmarshal(b, &tr); err != nil {
			t.Errorf("seed %s trace invalid: %v", seed, err)
		}
	}
}

// TestRecorderFlags checks -deadline wires through to the armed flight
// recorder: an absurdly tight deadline makes the first measured miss
// dump the ring to stderr, while the run itself still succeeds.
func TestRecorderFlags(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-protocol", "tokenb", "-workload", "oltp",
		"-procs", "4", "-ops", "150", "-warmup", "150", "-seeds", "1",
		"-flight-recorder", "64", "-deadline", "1ns"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	dump := errw.String()
	if !strings.Contains(dump, "flight recorder: transaction exceeded starvation deadline") {
		t.Fatalf("no recorder dump on stderr:\n%s", dump)
	}
	if !strings.Contains(dump, "protocol events, oldest first:") {
		t.Errorf("dump lacks the ring listing:\n%s", dump)
	}
	if !strings.Contains(out.String(), "avg miss latency") {
		t.Errorf("run with a tripped recorder printed no statistics:\n%s", out.String())
	}

	// A disabled recorder must not dump even with the same deadline.
	out.Reset()
	errw.Reset()
	args = []string{"-protocol", "tokenb", "-workload", "oltp",
		"-procs", "4", "-ops", "150", "-warmup", "150", "-seeds", "1",
		"-flight-recorder", "-1", "-deadline", "1ns"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errw.String(), "flight recorder") {
		t.Errorf("disabled recorder still dumped:\n%s", errw.String())
	}
}

// TestTraceRejectsExperiment checks the tracing and recorder flags are
// custom-point-only.
func TestTraceRejectsExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	for _, extra := range [][]string{
		{"-trace", "x.json"},
		{"-flight-recorder", "64"},
		{"-deadline", "1ms"},
	} {
		args := append([]string{"-experiment", "table2"}, extra...)
		err := run(args, &out, &errw)
		if err == nil || !strings.Contains(err.Error(), "-experiment") {
			t.Errorf("%v: err = %v, want rejection", extra, err)
		}
	}
}
