// Command sweep runs parameter sweeps over the simulator and emits CSV
// or JSON lines, for studies beyond the paper's fixed design points:
//
//	sweep -kind bandwidth   # runtime vs link bandwidth per protocol
//	sweep -kind procs       # runtime and traffic vs system size
//	sweep -kind tokens      # TokenB sensitivity to tokens per block
//	sweep -kind mshr        # sensitivity to memory-level parallelism
//
// Each row is one simulation point; pipe the output to a plotting tool.
// Sweeps are declarative engine.Plan grids executed on a bounded worker
// pool (-parallel, default one worker per CPU); every point is an
// independent deterministic simulation, so the rows are identical at
// any parallelism.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "bandwidth", "sweep kind: bandwidth, procs, tokens, mshr")
		wl       = flag.String("workload", "oltp", "workload for the sweep")
		ops      = flag.Int("ops", 2000, "measured operations per processor")
		warmup   = flag.Int("warmup", 5000, "warmup operations per processor")
		seed     = flag.Uint64("seed", 1, "random seed")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = one per CPU)")
		format   = flag.String("format", "csv", "output format: csv or json")
		progress = flag.Bool("progress", false, "report progress on stderr")
	)
	flag.Parse()

	var plan engine.Plan
	var cols []engine.Column
	var err error
	switch *kind {
	case "bandwidth":
		plan, cols = sweepBandwidth(*wl, *seed)
	case "procs":
		plan, cols = sweepProcs(*seed)
	case "tokens":
		plan, cols = sweepTokens(*wl, *seed)
	case "mshr":
		plan, cols = sweepMSHR(*wl, *seed)
	default:
		err = fmt.Errorf("unknown sweep kind %q", *kind)
	}
	if err == nil {
		plan.Ops = *ops
		plan.Warmup = *warmup
		err = execute(plan, cols, *parallel, *format, *progress)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// execute runs the plan on the worker pool and streams rows to stdout.
func execute(plan engine.Plan, cols []engine.Column, parallel int, format string, progress bool) error {
	var sink engine.Sink
	switch format {
	case "csv":
		sink = &engine.CSVSink{W: os.Stdout, Columns: cols}
	case "json":
		sink = &engine.JSONLSink{W: os.Stdout}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
	eng := engine.Engine{Workers: parallel}
	if progress {
		eng.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	_, err := eng.Execute(context.Background(), plan, sink)
	return err
}

// sweepBandwidth shows where each protocol becomes bandwidth-bound: the
// paper argues TokenB's extra traffic is harmless on high-bandwidth
// links but matters on starved ones.
func sweepBandwidth(wl string, seed uint64) (engine.Plan, []engine.Column) {
	var muts []engine.Mutation
	for _, gbps := range []float64{0.4, 0.8, 1.6, 3.2, 6.4, 12.8} {
		bw := gbps
		muts = append(muts, engine.Mutation{
			Name:  fmt.Sprintf("%.1fgbps", bw),
			Tags:  map[string]string{"bandwidth_gbps": fmt.Sprintf("%.1f", bw)},
			Apply: func(c *machine.Config) { c.Net.LinkBandwidth = bw * 1e9 },
		})
	}
	plan := engine.Plan{
		Variants: engine.Grid(
			[]string{harness.ProtoTokenB, harness.ProtoDirectory, harness.ProtoHammer},
			[]string{harness.TopoTorus}),
		Workloads: []string{wl},
		Mutations: muts,
		Seeds:     []uint64{seed},
	}
	return plan, []engine.Column{engine.ColProtocol, engine.TagColumn("bandwidth_gbps"),
		engine.ColCyclesPerTxn, engine.ColAvgMissNS, engine.ColBytesPerMiss}
}

// sweepProcs extends the question 5 scalability study with runtime.
func sweepProcs(seed uint64) (engine.Plan, []engine.Column) {
	var variants []engine.Variant
	for _, proto := range []string{harness.ProtoTokenB, harness.ProtoDirectory} {
		for procs := 4; procs <= 64; procs *= 2 {
			variants = append(variants, engine.Variant{
				Name: fmt.Sprintf("%s-%dp", proto, procs),
				Point: harness.Point{
					Protocol: proto, Topo: harness.TopoTorus, Procs: procs,
					NewGen: func(n int) machine.Generator {
						return workload.NewUniform(2048, 0.3, 5*sim.Nanosecond, n)
					},
				},
			})
		}
	}
	plan := engine.Plan{Variants: variants, Seeds: []uint64{seed}}
	return plan, []engine.Column{engine.ColProtocol, engine.ColProcs,
		engine.ColCyclesPerTxn, engine.ColBytesPerMiss}
}

// sweepTokens varies T per block for TokenB.
func sweepTokens(wl string, seed uint64) (engine.Plan, []engine.Column) {
	var muts []engine.Mutation
	for _, tokens := range []int{16, 24, 32, 64, 128, 256} {
		tk := tokens
		muts = append(muts, engine.Mutation{
			Name:  fmt.Sprintf("T=%d", tk),
			Tags:  map[string]string{"tokens_per_block": fmt.Sprintf("%d", tk)},
			Apply: func(c *machine.Config) { c.TokensPerBlock = tk },
		})
	}
	plan := engine.Plan{
		Variants:  engine.Grid([]string{harness.ProtoTokenB}, []string{harness.TopoTorus}),
		Workloads: []string{wl},
		Mutations: muts,
		Seeds:     []uint64{seed},
	}
	return plan, []engine.Column{engine.TagColumn("tokens_per_block"),
		engine.ColCyclesPerTxn, engine.ColReissuedPct, engine.ColPersistentPct}
}

// sweepMSHR varies the processor's miss- and load-level parallelism.
func sweepMSHR(wl string, seed uint64) (engine.Plan, []engine.Column) {
	var muts []engine.Mutation
	for _, mshrs := range []int{2, 4, 8, 16} {
		for _, loads := range []int{1, 2, 4} {
			ms, ld := mshrs, loads
			muts = append(muts, engine.Mutation{
				Name: fmt.Sprintf("mshr=%d/loads=%d", ms, ld),
				Tags: map[string]string{
					"mshrs":     fmt.Sprintf("%d", ms),
					"max_loads": fmt.Sprintf("%d", ld),
				},
				Apply: func(c *machine.Config) {
					c.MSHRs = ms
					c.MaxLoads = ld
				},
			})
		}
	}
	plan := engine.Plan{
		Variants:  engine.Grid([]string{harness.ProtoTokenB}, []string{harness.TopoTorus}),
		Workloads: []string{wl},
		Mutations: muts,
		Seeds:     []uint64{seed},
	}
	return plan, []engine.Column{engine.TagColumn("mshrs"), engine.TagColumn("max_loads"),
		engine.ColCyclesPerTxn, engine.ColAvgMissNS}
}
