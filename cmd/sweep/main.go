// Command sweep runs parameter sweeps over the simulator and emits CSV,
// for studies beyond the paper's fixed design points:
//
//	sweep -kind bandwidth   # runtime vs link bandwidth per protocol
//	sweep -kind procs       # runtime and traffic vs system size
//	sweep -kind tokens      # TokenB sensitivity to tokens per block
//	sweep -kind mshr        # sensitivity to memory-level parallelism
//
// Each row is one simulation point; pipe the output to a plotting tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"tokencoherence/internal/harness"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/sim"
	"tokencoherence/internal/workload"
)

func main() {
	var (
		kind   = flag.String("kind", "bandwidth", "sweep kind: bandwidth, procs, tokens, mshr")
		wl     = flag.String("workload", "oltp", "workload for the sweep")
		ops    = flag.Int("ops", 2000, "measured operations per processor")
		warmup = flag.Int("warmup", 5000, "warmup operations per processor")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var err error
	switch *kind {
	case "bandwidth":
		err = sweepBandwidth(*wl, *ops, *warmup, *seed)
	case "procs":
		err = sweepProcs(*ops, *warmup, *seed)
	case "tokens":
		err = sweepTokens(*wl, *ops, *warmup, *seed)
	case "mshr":
		err = sweepMSHR(*wl, *ops, *warmup, *seed)
	default:
		err = fmt.Errorf("unknown sweep kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func point(proto, wl string, ops, warmup int, seed uint64) harness.Point {
	return harness.Point{
		Protocol: proto, Topo: harness.TopoTorus, Workload: wl,
		Ops: ops, Warmup: warmup, Seed: seed,
	}
}

// sweepBandwidth shows where each protocol becomes bandwidth-bound: the
// paper argues TokenB's extra traffic is harmless on high-bandwidth
// links but matters on starved ones.
func sweepBandwidth(wl string, ops, warmup int, seed uint64) error {
	fmt.Println("protocol,bandwidth_gbps,cycles_per_txn,avg_miss_ns,bytes_per_miss")
	for _, proto := range []string{harness.ProtoTokenB, harness.ProtoDirectory, harness.ProtoHammer} {
		for _, gbps := range []float64{0.4, 0.8, 1.6, 3.2, 6.4, 12.8} {
			pt := point(proto, wl, ops, warmup, seed)
			bw := gbps
			pt.Mutate = func(c *machine.Config) { c.Net.LinkBandwidth = bw * 1e9 }
			run, err := harness.Run(pt)
			if err != nil {
				return err
			}
			fmt.Printf("%s,%.1f,%.2f,%.1f,%.1f\n", proto, gbps,
				run.CyclesPerTransaction(), run.AvgMissLatency().Nanoseconds(), run.BytesPerMiss())
		}
	}
	return nil
}

// sweepProcs extends the question 5 scalability study with runtime.
func sweepProcs(ops, warmup int, seed uint64) error {
	fmt.Println("protocol,procs,cycles_per_txn,bytes_per_miss")
	for _, proto := range []string{harness.ProtoTokenB, harness.ProtoDirectory} {
		for procs := 4; procs <= 64; procs *= 2 {
			pt := harness.Point{
				Protocol: proto, Topo: harness.TopoTorus,
				Gen:   workload.NewUniform(2048, 0.3, 5*sim.Nanosecond, procs),
				Procs: procs, Ops: ops, Warmup: warmup, Seed: seed,
			}
			run, err := harness.Run(pt)
			if err != nil {
				return err
			}
			fmt.Printf("%s,%d,%.2f,%.1f\n", proto, procs, run.CyclesPerTransaction(), run.BytesPerMiss())
		}
	}
	return nil
}

// sweepTokens varies T per block for TokenB.
func sweepTokens(wl string, ops, warmup int, seed uint64) error {
	fmt.Println("tokens_per_block,cycles_per_txn,reissued_pct,persistent_pct")
	for _, tokens := range []int{16, 24, 32, 64, 128, 256} {
		pt := point(harness.ProtoTokenB, wl, ops, warmup, seed)
		tk := tokens
		pt.Mutate = func(c *machine.Config) { c.TokensPerBlock = tk }
		run, err := harness.Run(pt)
		if err != nil {
			return err
		}
		m := run.Misses
		fmt.Printf("%d,%.2f,%.2f,%.3f\n", tokens, run.CyclesPerTransaction(),
			m.Frac(m.ReissuedOnce+m.ReissuedMore), m.Frac(m.Persistent))
	}
	return nil
}

// sweepMSHR varies the processor's miss- and load-level parallelism.
func sweepMSHR(wl string, ops, warmup int, seed uint64) error {
	fmt.Println("mshrs,max_loads,cycles_per_txn,avg_miss_ns")
	for _, mshrs := range []int{2, 4, 8, 16} {
		for _, loads := range []int{1, 2, 4} {
			pt := point(harness.ProtoTokenB, wl, ops, warmup, seed)
			ms, ld := mshrs, loads
			pt.Mutate = func(c *machine.Config) {
				c.MSHRs = ms
				c.MaxLoads = ld
			}
			run, err := harness.Run(pt)
			if err != nil {
				return err
			}
			fmt.Printf("%d,%d,%.2f,%.1f\n", mshrs, loads,
				run.CyclesPerTransaction(), run.AvgMissLatency().Nanoseconds())
		}
	}
	return nil
}
