// Command sweep runs parameter sweeps over the simulator and emits CSV
// or JSON lines, for studies beyond the paper's fixed design points:
//
//	sweep -kind bandwidth   # runtime vs link bandwidth per protocol
//	sweep -kind procs       # runtime and traffic vs system size
//	sweep -kind tokens      # TokenB sensitivity to tokens per block
//	sweep -kind mshr        # sensitivity to memory-level parallelism
//
// Each row is one simulation point; pipe the output to a plotting tool.
// Sweeps are declarative engine.Plan grids (see internal/sweeps)
// executed on a bounded worker pool (-parallel, default one worker per
// CPU); every point is an independent deterministic simulation, so the
// rows are identical at any parallelism.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/sweeps"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes the requested sweep, writing rows to
// stdout and progress to stderr. It is the testable body of main.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("kind", "bandwidth", "sweep kind: "+strings.Join(sweeps.Kinds(), ", "))
		wl       = fs.String("workload", "oltp", "workload for the sweep: "+strings.Join(registry.WorkloadNames(), ", "))
		ops      = fs.Int("ops", 2000, "measured operations per processor")
		warmup   = fs.Int("warmup", 5000, "warmup operations per processor")
		seed     = fs.Uint64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "worker pool size (0 = one per CPU)")
		format   = fs.String("format", "csv", "output format: csv or json")
		progress = fs.Bool("progress", false, "report progress on stderr")
		list     = fs.Bool("list", false, "list registered sweep kinds and components, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printComponents(stdout)
		return nil
	}
	plan, cols, err := sweeps.ByKind(*kind, *wl, *seed)
	if err != nil {
		return err
	}
	plan.Ops = *ops
	plan.Warmup = *warmup
	return execute(plan, cols, *parallel, *format, *progress, stdout, stderr)
}

// printComponents enumerates the sweep kinds and the registry's
// components, so users discover what -kind and -workload (and, for
// custom plans, Point.Protocol/Topo) accept.
func printComponents(w io.Writer) {
	fmt.Fprintf(w, "sweep kinds: %s\n", strings.Join(sweeps.Kinds(), ", "))
	fmt.Fprintf(w, "protocols:   %s\n", strings.Join(registry.ProtocolNames(), ", "))
	fmt.Fprintf(w, "topologies:  %s\n", strings.Join(registry.TopologyNames(), ", "))
	fmt.Fprintf(w, "workloads:   %s\n", strings.Join(registry.WorkloadNames(), ", "))
}

// execute runs the plan on the worker pool and streams rows to stdout.
func execute(plan engine.Plan, cols []engine.Column, parallel int, format string, progress bool, stdout, stderr io.Writer) error {
	var sink engine.Sink
	switch format {
	case "csv":
		sink = &engine.CSVSink{W: stdout, Columns: cols}
	case "json":
		sink = &engine.JSONLSink{W: stdout}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
	eng := engine.Engine{Workers: parallel}
	if progress {
		eng.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "\rsweep: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}
	_, err := eng.Execute(context.Background(), plan, sink)
	return err
}
