// Command sweep runs parameter sweeps over the simulator and emits CSV
// or JSON lines, for studies beyond the paper's fixed design points:
//
//	sweep -kind bandwidth   # runtime vs link bandwidth per protocol
//	sweep -kind procs       # runtime and traffic vs system size
//	sweep -kind tokens      # TokenB sensitivity to tokens per block
//	sweep -kind mshr        # sensitivity to memory-level parallelism
//
// Each row is one simulation point; pipe the output to a plotting tool.
// Sweeps are declarative engine.Plan grids (see internal/sweeps)
// executed on a bounded worker pool (-parallel, default one worker per
// CPU); every point is an independent deterministic simulation, so the
// rows are identical at any parallelism. -columns selects any published
// metric by name in place of the sweep's default columns
// (-list-metrics shows the schema); -format json serializes the full
// metric map per point.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/sweeps"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes the requested sweep, writing rows to
// stdout and progress to stderr. It is the testable body of main.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("kind", "bandwidth", "sweep kind: "+strings.Join(sweeps.Kinds(), ", "))
		wl       = fs.String("workload", "oltp", "workload for the sweep: "+strings.Join(registry.WorkloadNames(), ", "))
		ops      = fs.Int("ops", 2000, "measured operations per processor")
		warmup   = fs.Int("warmup", 5000, "warmup operations per processor")
		seed     = fs.Uint64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "worker pool size (0 = one per CPU)")
		format   = fs.String("format", "csv", "output format: csv or json")
		progress = fs.Bool("progress", false, "report progress on stderr")
		list     = fs.Bool("list", false, "list registered sweep kinds and components, then exit")
		columns  = fs.String("columns", "", "comma-separated CSV columns (identity fields, metric names, mutation tags) overriding the sweep's defaults")
		listMet  = fs.Bool("list-metrics", false, "list the metric schema of the sweep's first point, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printComponents(stdout)
		return nil
	}
	plan, cols, err := sweeps.ByKind(*kind, *wl, *seed)
	if err != nil {
		return err
	}
	if *listMet {
		return printMetrics(stdout, plan)
	}
	if *columns != "" {
		if *format != "csv" {
			return fmt.Errorf("-columns selects CSV columns and cannot be combined with -format %s (JSONL already carries the full metric map)", *format)
		}
		names := engine.SplitColumnSpec(*columns)
		if len(names) == 0 {
			return fmt.Errorf("-columns %q names no columns", *columns)
		}
		if err := rejectUnknownColumns(names, plan); err != nil {
			return err
		}
		cols = engine.ColumnsByName(names)
	}
	plan.Ops = *ops
	plan.Warmup = *warmup
	return execute(plan, cols, *parallel, *format, *progress, stdout, stderr)
}

// rejectUnknownColumns fails a -columns selection naming neither an
// identity field, a metric of the sweep's schema (unioned across its
// protocols), nor one of its mutation tags — a typo would otherwise
// render silent empty cells.
func rejectUnknownColumns(names []string, plan engine.Plan) error {
	descs, err := engine.PlanMetricSchema(plan)
	if err != nil {
		return err
	}
	var tags []string
	seen := map[string]bool{}
	for _, mut := range plan.Mutations {
		for tag := range mut.Tags {
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
	}
	if unknown := engine.UnknownColumns(names, descs, tags); len(unknown) > 0 {
		return fmt.Errorf("unknown column(s) %s (identity fields, metric names from -list-metrics, or this sweep's tags %v)",
			strings.Join(unknown, ", "), tags)
	}
	return nil
}

// printMetrics lists the metric schema the sweep's points expose —
// unioned across the sweep's protocols, so protocol-specific metrics of
// every variant show up — telling users what -columns accepts beyond
// the identity fields and mutation tags.
func printMetrics(w io.Writer, plan engine.Plan) error {
	descs, err := engine.PlanMetricSchema(plan)
	if err != nil {
		return err
	}
	return engine.WriteMetricSchema(w, descs)
}

// printComponents enumerates the sweep kinds and the registry's
// components, so users discover what -kind and -workload (and, for
// custom plans, Point.Protocol/Topo) accept.
func printComponents(w io.Writer) {
	fmt.Fprintf(w, "sweep kinds: %s\n", strings.Join(sweeps.Kinds(), ", "))
	fmt.Fprintf(w, "protocols:   %s\n", strings.Join(registry.ProtocolNames(), ", "))
	fmt.Fprintf(w, "topologies:  %s\n", strings.Join(registry.TopologyNames(), ", "))
	fmt.Fprintf(w, "workloads:   %s\n", strings.Join(registry.WorkloadNames(), ", "))
}

// execute runs the plan on the worker pool and streams rows to stdout.
func execute(plan engine.Plan, cols []engine.Column, parallel int, format string, progress bool, stdout, stderr io.Writer) error {
	var sink engine.Sink
	switch format {
	case "csv":
		sink = &engine.CSVSink{W: stdout, Columns: cols}
	case "json":
		sink = &engine.JSONLSink{W: stdout}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", format)
	}
	eng := engine.Engine{Workers: parallel}
	if progress {
		eng.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "\rsweep: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}
	}
	_, err := eng.Execute(context.Background(), plan, sink)
	return err
}
