// Command sweep runs parameter sweeps over the simulator and emits CSV
// or JSON lines, for studies beyond the paper's fixed design points:
//
//	sweep -kind bandwidth   # runtime vs link bandwidth per protocol
//	sweep -kind procs       # runtime and traffic vs system size
//	sweep -kind tokens      # TokenB sensitivity to tokens per block
//	sweep -kind mshr        # sensitivity to memory-level parallelism
//
// Each row is one simulation point; pipe the output to a plotting tool.
// Sweeps are declarative engine.Plan grids (see internal/sweeps)
// executed on a bounded worker pool (-parallel, default one worker per
// CPU); every point is an independent deterministic simulation, so the
// rows are identical at any parallelism. -columns selects any published
// metric by name in place of the sweep's default columns
// (-list-metrics shows the schema); -format json serializes the full
// metric map per point.
//
// Sweeps can run as a service against a content-addressed result store:
//
//	sweep -kind bandwidth -store results/            # archive every point
//	sweep -kind bandwidth -store results/ -resume    # recall what's archived
//	sweep -kind procs -store results/ -resume -format json -shard 0/2 > s0.jsonl
//	sweep -kind procs -store results/ -resume -format json -shard 1/2 > s1.jsonl
//	sweep merge s0.jsonl s1.jsonl                    # back to plan order
//
// -store archives each completed point under its content hash
// (engine.PointKey) as it finishes, so a killed sweep re-run with
// -resume recomputes only the missing points and emits byte-identical
// output. -shard i/N partitions one plan across cooperating processes
// sharing a store; merge reassembles their JSONL outputs byte-exactly.
// `sweep store gc -store results/` prunes entries stamped by older
// simulator versions, which no current binary could ever reuse.
//
// Sweeps can also run distributed, with no shared filesystem:
//
//	sweep serve -kind procs -addr :8080 -format json > out.jsonl
//	sweep work -coordinator http://host:8080   # on each machine
//
// serve runs the plan's coordinator: it leases points to work daemons
// over HTTP, renews leases on heartbeat, re-issues the points of
// workers that die, and emits the collected rows in plan order —
// byte-identical to running the sweep in one process (see
// internal/sweepd for the protocol and its failure semantics).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/machine"
	"tokencoherence/internal/registry"
	"tokencoherence/internal/resultstore"
	"tokencoherence/internal/sweeps"
	"tokencoherence/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run parses args and executes the requested sweep, writing rows to
// stdout and progress to stderr. It is the testable body of main.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "merge":
			return runMerge(args[1:], stdout, stderr)
		case "serve":
			return runServe(args[1:], stdout, stderr)
		case "work":
			return runWork(args[1:], stderr)
		case "store":
			return runStore(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("kind", "bandwidth", "sweep kind: "+strings.Join(sweeps.Kinds(), ", "))
		wl       = fs.String("workload", "oltp", "workload for the sweep: "+strings.Join(registry.WorkloadNames(), ", "))
		ops      = fs.Int("ops", 2000, "measured operations per processor")
		warmup   = fs.Int("warmup", 5000, "warmup operations per processor")
		seed     = fs.Uint64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "worker pool size (0 = one per CPU)")
		islands  = fs.Int("islands", 0, "conservative-parallel islands per point (0 or 1 = serial kernel; results are byte-identical at any count)")
		format   = fs.String("format", "csv", "output format: csv or json")
		progress = fs.Bool("progress", false, "report progress on stderr")
		list     = fs.Bool("list", false, "list registered sweep kinds and components, then exit")
		columns  = fs.String("columns", "", "comma-separated CSV columns (identity fields, metric names, mutation tags) overriding the sweep's defaults")
		listMet  = fs.Bool("list-metrics", false, "list the metric schema of the sweep's first point, then exit")
		traceDir = fs.String("trace", "", "write one Chrome trace-event JSON file per point into this directory (load in chrome://tracing or Perfetto)")
		httpAddr = fs.String("http", "", "serve live sweep telemetry on this address while the sweep runs (expvar at /debug/vars, profiles at /debug/pprof/)")
		storeDir = fs.String("store", "", "archive each completed point in this content-addressed result store directory (created if missing)")
		resume   = fs.Bool("resume", false, "recall archived results from -store instead of recomputing them (resume mode)")
		shard    = fs.String("shard", "", "run only shard i of N cooperating processes, as i/N (requires -format json; reassemble with 'sweep merge')")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *storeDir == "" {
		return fmt.Errorf("-resume recalls archived results and requires -store")
	}
	var shardIdx, shardCount int
	if *shard != "" {
		var err error
		if shardIdx, shardCount, err = parseShardSpec(*shard); err != nil {
			return err
		}
		if *format != "json" {
			return fmt.Errorf("-shard emits mergeable JSONL and requires -format json")
		}
	}
	if *list {
		printComponents(stdout)
		return nil
	}
	plan, cols, err := sweeps.ByKind(*kind, *wl, *seed)
	if err != nil {
		return err
	}
	if *listMet {
		return printMetrics(stdout, plan)
	}
	if *columns != "" {
		if *format != "csv" {
			return fmt.Errorf("-columns selects CSV columns and cannot be combined with -format %s (JSONL already carries the full metric map)", *format)
		}
		names := engine.SplitColumnSpec(*columns)
		if len(names) == 0 {
			return fmt.Errorf("-columns %q names no columns", *columns)
		}
		if err := rejectUnknownColumns(names, plan); err != nil {
			return err
		}
		cols = engine.ColumnsByName(names)
	}
	plan.Ops = *ops
	plan.Warmup = *warmup
	plan.Islands = *islands
	if shardCount > 0 {
		// More shards than points means some shard indices own nothing:
		// legal (the merge still reassembles correctly) but almost always
		// a mis-sized -shard spec, so say so instead of silently emitting
		// an empty file.
		if jobs, err := plan.Jobs(); err == nil && shardCount > len(jobs) {
			fmt.Fprintf(stderr, "sweep: warning: -shard %s splits a %d-point plan %d ways; shards >= %d will be empty\n",
				*shard, len(jobs), shardCount, len(jobs))
		}
	}
	return execute(plan, cols, options{
		parallel: *parallel,
		format:   *format,
		progress: *progress,
		traceDir: *traceDir,
		httpAddr: *httpAddr,
		store:    *storeDir,
		resume:   *resume,
		shard:    shardIdx,
		shards:   shardCount,
	}, stdout, stderr)
}

// rejectUnknownColumns fails a -columns selection naming neither an
// identity field, a metric of the sweep's schema (unioned across its
// protocols), nor one of its mutation tags — a typo would otherwise
// render silent empty cells.
func rejectUnknownColumns(names []string, plan engine.Plan) error {
	descs, err := engine.PlanMetricSchema(plan)
	if err != nil {
		return err
	}
	var tags []string
	seen := map[string]bool{}
	for _, mut := range plan.Mutations {
		for tag := range mut.Tags {
			if !seen[tag] {
				seen[tag] = true
				tags = append(tags, tag)
			}
		}
	}
	if unknown := engine.UnknownColumns(names, descs, tags); len(unknown) > 0 {
		return fmt.Errorf("unknown column(s) %s (identity fields, metric names from -list-metrics, or this sweep's tags %v)",
			strings.Join(unknown, ", "), tags)
	}
	return nil
}

// printMetrics lists the metric schema the sweep's points expose —
// unioned across the sweep's protocols, so protocol-specific metrics of
// every variant show up — telling users what -columns accepts beyond
// the identity fields and mutation tags.
func printMetrics(w io.Writer, plan engine.Plan) error {
	descs, err := engine.PlanMetricSchema(plan)
	if err != nil {
		return err
	}
	return engine.WriteMetricSchema(w, descs)
}

// printComponents enumerates the sweep kinds and the registry's
// components, so users discover what -kind and -workload (and, for
// custom plans, Point.Protocol/Topo) accept.
func printComponents(w io.Writer) {
	fmt.Fprintf(w, "sweep kinds: %s\n", strings.Join(sweeps.Kinds(), ", "))
	fmt.Fprintf(w, "protocols:   %s\n", strings.Join(registry.AnnotatedProtocolNames(), ", "))
	fmt.Fprintf(w, "topologies:  %s\n", strings.Join(registry.TopologyNames(), ", "))
	fmt.Fprintf(w, "workloads:   %s\n", strings.Join(registry.WorkloadNames(), ", "))
}

// options collects execute's behavior flags.
type options struct {
	parallel int
	format   string
	progress bool
	traceDir string
	httpAddr string
	store    string
	resume   bool
	// shard/shards partition the plan (0/0 = unsharded); shards >= 1
	// selects the mergeable index-wrapped JSONL output format.
	shard, shards int
}

// execute runs the plan on the worker pool and streams rows to stdout.
// Progress lines, flight-recorder dumps, and telemetry notices all go to
// stderr through one mutex-serialized writer, each as a single Write, so
// parallel workers never tear each other's lines.
func execute(plan engine.Plan, cols []engine.Column, opt options, stdout, stderr io.Writer) error {
	// Buffer stdout and let the sink's End flush it: rows reach the
	// consumer in large writes, and an interrupted sweep still leaves a
	// complete, parseable partial file (End runs on every exit path).
	out := bufio.NewWriter(stdout)
	var sink engine.Sink
	switch {
	case opt.shards >= 1:
		sink = newShardSink(out)
	case opt.format == "csv":
		sink = &engine.CSVSink{W: out, Columns: cols}
	case opt.format == "json":
		sink = &engine.JSONLSink{W: out}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", opt.format)
	}
	errw := trace.NewSyncWriter(stderr)
	plan.Variants = withDebugLog(plan.Variants, errw)

	eng := engine.Engine{Workers: opt.parallel, Shard: opt.shard, Shards: opt.shards}
	var store *resultstore.Store
	if opt.store != "" {
		var err error
		if store, err = resultstore.Open(opt.store); err != nil {
			return err
		}
		// Stamp new archive entries with this binary's simulator version
		// so `sweep store gc` can later prune entries no current binary
		// could ever reuse.
		store.SetVersion(engine.CodeVersion)
		eng.Store = store
		eng.Reuse = opt.resume
	}

	var tracers *pointTracers
	if opt.traceDir != "" {
		if err := os.MkdirAll(opt.traceDir, 0o755); err != nil {
			return err
		}
		tracers = &pointTracers{dir: opt.traceDir, m: make(map[int]*trace.Tracer)}
		eng.Attach = tracers.attach
	}
	var tel *telemetry
	if opt.httpAddr != "" {
		workers := opt.parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		var err error
		if tel, err = startTelemetry(opt.httpAddr, workers, store, errw); err != nil {
			return err
		}
		defer tel.stop()
	}

	var flushErr error
	if opt.progress || tracers != nil || tel != nil {
		eng.Progress = func(p engine.Progress) {
			if tracers != nil {
				if err := tracers.flush(p.Last); err != nil && flushErr == nil {
					flushErr = err
				}
			}
			if tel != nil {
				tel.update(p)
			}
			if opt.progress {
				status := "ok"
				if p.Last.Err != nil {
					status = "FAILED"
				}
				line := fmt.Sprintf("sweep: %d/%d %s %s\n", p.Done, p.Total, jobLabel(p.Last.Job), status)
				if p.Done == p.Total {
					summary := fmt.Sprintf("sweep: %d/%d points", p.Done, p.Total)
					if p.Failed > 0 {
						summary += fmt.Sprintf(", %d failed", p.Failed)
					}
					line += summary + "\n"
				}
				io.WriteString(errw, line) //nolint:errcheck // progress is best effort
			}
		}
	}

	// Ctrl-C cancels the plan instead of killing the process mid-write:
	// the engine stops dispatching, flushes the sinks (End), and with
	// -store every completed point is already archived for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	_, err := eng.Execute(ctx, plan, sink)
	if err == nil {
		err = flushErr
	}
	if errors.Is(err, context.Canceled) {
		err = fmt.Errorf("interrupted (completed points are flushed%s)", resumeHint(opt))
	}
	return err
}

// resumeHint tells an interrupted user how to pick the sweep back up.
func resumeHint(opt options) string {
	if opt.store == "" {
		return ""
	}
	return "; re-run with -store " + opt.store + " -resume to continue"
}

// withDebugLog routes every point's flight-recorder dumps through w by
// prepending a Mutate to each variant (the variant's own Mutate and the
// plan's mutation axis still apply afterwards and may override).
func withDebugLog(variants []engine.Variant, w io.Writer) []engine.Variant {
	out := make([]engine.Variant, len(variants))
	for i, v := range variants {
		prev := v.Point.Mutate
		v.Point.Mutate = func(c *machine.Config) {
			c.DebugLog = w
			if prev != nil {
				prev(c)
			}
		}
		out[i] = v
	}
	return out
}

// jobLabel renders a job's plan coordinates for progress lines.
func jobLabel(job engine.Job) string {
	parts := []string{job.Variant}
	if wl := job.Point.Workload; wl != "" {
		parts = append(parts, wl)
	}
	if job.Mutation != "" {
		parts = append(parts, job.Mutation)
	}
	return fmt.Sprintf("%s seed=%d", strings.Join(parts, "/"), job.Point.Seed)
}

// pointTracers attaches one transaction tracer per job and writes each
// job's trace file once the job completes. Attach runs on worker
// goroutines, so the index map is mutex-protected; flush runs on the
// engine's single collector goroutine, bounding buffered traces to the
// in-flight jobs.
type pointTracers struct {
	dir string
	mu  sync.Mutex
	m   map[int]*trace.Tracer
}

func (pt *pointTracers) attach(job engine.Job) func(*machine.System) {
	t := trace.NewTracer(trace.TracerConfig{})
	pt.mu.Lock()
	pt.m[job.Index] = t
	pt.mu.Unlock()
	return func(sys *machine.System) { sys.Observe(t.Observer()) }
}

func (pt *pointTracers) flush(r *engine.Result) error {
	pt.mu.Lock()
	t := pt.m[r.Index]
	delete(pt.m, r.Index)
	pt.mu.Unlock()
	if t == nil {
		return nil // job was skipped before its tracer attached
	}
	f, err := os.Create(filepath.Join(pt.dir, traceFileName(r.Job)))
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// traceFileName derives a per-point file name from the job's plan
// coordinates, stable across runs and parallelism.
func traceFileName(job engine.Job) string {
	name := job.Variant
	if wl := job.Point.Workload; wl != "" {
		name += "-" + wl
	}
	if job.Mutation != "" {
		name += "-" + job.Mutation
	}
	return sanitizeFile(fmt.Sprintf("point-%04d-%s-seed%d.json", job.Index, name, job.Point.Seed))
}

// sanitizeFile maps characters that are awkward in file names (the
// mutation axis uses "/" and "=") to underscores.
func sanitizeFile(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}
