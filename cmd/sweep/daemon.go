package main

import (
	"bufio"
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/resultstore"
	"tokencoherence/internal/sweepd"
	"tokencoherence/internal/sweeps"
	"tokencoherence/internal/trace"
)

// planFlags is the -kind/-workload/... group shared by the in-process
// sweep and the serve subcommand; both must name plans the same way so a
// worker's local expansion of the advertised PlanSpec reproduces the
// coordinator's jobs exactly.
type planFlags struct {
	kind, workload       string
	seed                 uint64
	ops, warmup, islands int
}

func (p *planFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.kind, "kind", "bandwidth", "sweep kind: "+strings.Join(sweeps.Kinds(), ", "))
	fs.StringVar(&p.workload, "workload", "oltp", "workload for the sweep")
	fs.Uint64Var(&p.seed, "seed", 1, "random seed")
	fs.IntVar(&p.ops, "ops", 2000, "measured operations per processor")
	fs.IntVar(&p.warmup, "warmup", 5000, "warmup operations per processor")
	fs.IntVar(&p.islands, "islands", 0, "conservative-parallel islands per point")
}

func (p *planFlags) spec() sweepd.PlanSpec {
	return sweepd.PlanSpec{
		Kind: p.kind, Workload: p.workload, Seed: p.seed,
		Ops: p.ops, Warmup: p.warmup, Islands: p.islands,
	}
}

// resolveSpec rebuilds the plan a PlanSpec names — the worker side of
// the plan agreement, and serve uses it too so both sides run the same
// code path.
func resolveSpec(spec sweepd.PlanSpec) (engine.Plan, []engine.Column, error) {
	plan, cols, err := sweeps.ByKind(spec.Kind, spec.Workload, spec.Seed)
	if err != nil {
		return engine.Plan{}, nil, err
	}
	plan.Ops = spec.Ops
	plan.Warmup = spec.Warmup
	plan.Islands = spec.Islands
	return plan, cols, nil
}

// runServe is the `sweep serve` subcommand: run the plan's coordinator,
// serving leases to `sweep work` daemons and emitting the collected rows
// on stdout — byte-identical to running the same sweep in-process.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var pf planFlags
	pf.register(fs)
	var (
		addr     = fs.String("addr", "127.0.0.1:0", "address to serve the coordinator API on (the chosen address is announced on stderr)")
		leaseTTL = fs.Duration("lease", sweepd.DefaultLeaseTTL, "lease TTL: a worker that misses heartbeats for this long forfeits its points")
		linger   = fs.Duration("linger", 2*time.Second, "keep serving this long after the plan completes so polling workers see done instead of a dead socket")
		format   = fs.String("format", "csv", "output format: csv or json")
		progress = fs.Bool("progress", false, "report progress on stderr")
		httpAddr = fs.String("http", "", "serve live sweep telemetry on this address (expvar at /debug/vars)")
		storeDir = fs.String("store", "", "archive each completed point in this content-addressed result store directory")
		resume   = fs.Bool("resume", false, "recall archived results from -store instead of leasing them to workers")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *storeDir == "" {
		return fmt.Errorf("-resume recalls archived results and requires -store")
	}
	spec := pf.spec()
	plan, cols, err := resolveSpec(spec)
	if err != nil {
		return err
	}

	// Buffer stdout and let the sink's End flush it, exactly like the
	// in-process execute path.
	out := bufio.NewWriter(stdout)
	var sink engine.Sink
	switch *format {
	case "csv":
		sink = &engine.CSVSink{W: out, Columns: cols}
	case "json":
		sink = &engine.JSONLSink{W: out}
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	errw := trace.NewSyncWriter(stderr)

	var store *resultstore.Store
	if *storeDir != "" {
		if store, err = resultstore.Open(*storeDir); err != nil {
			return err
		}
		store.SetVersion(engine.CodeVersion)
	}
	coord := &sweepd.Coordinator{
		Plan:     plan,
		Spec:     spec,
		Store:    store,
		Reuse:    *resume,
		LeaseTTL: *leaseTTL,
		Log:      errw,
	}

	var tel *telemetry
	if *httpAddr != "" {
		if tel, err = startTelemetry(*httpAddr, 0, store, errw); err != nil {
			return err
		}
		defer tel.stop()
		// The per-worker map: lease counts, completions, failures, and
		// heartbeat age per worker ID, live at /debug/vars.
		m := sweepVars()
		m.Set("workers", expvar.Func(func() any { return coord.WorkerStats() }))
		m.Set("workers_live", expvar.Func(func() any { return coord.LiveWorkers() }))
	}
	if *progress || tel != nil {
		coord.Progress = func(p engine.Progress) {
			if tel != nil {
				tel.update(p)
			}
			if *progress {
				status := "ok"
				if p.Last.Err != nil {
					status = "FAILED"
				}
				line := fmt.Sprintf("sweep: %d/%d %s %s\n", p.Done, p.Total, jobLabel(p.Last.Job), status)
				if p.Done == p.Total {
					line += fmt.Sprintf("sweep: %d/%d points\n", p.Done, p.Total)
				}
				io.WriteString(errw, line) //nolint:errcheck // progress is best effort
			}
		}
	}

	if err := coord.Init(sink); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	// The announcement is the contract for scripts binding port 0: parse
	// the address off stderr, hand it to `sweep work -coordinator`.
	fmt.Fprintf(errw, "sweep: coordinator on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed at Close

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	waitErr := coord.Wait(ctx)
	if waitErr == nil && *linger > 0 {
		// Workers poll /lease until they see done; dying the instant the
		// last result lands would turn their final poll into a connection
		// error and a pointless retry storm.
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
	srv.Close() //nolint:errcheck // listener teardown, best effort
	return waitErr
}

// runWork is the `sweep work` subcommand: a worker daemon that joins a
// coordinator, rebuilds its plan locally, and simulates leased points
// until the plan completes.
func runWork(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		coordURL = fs.String("coordinator", "", "coordinator base URL, e.g. http://host:8080 (required)")
		id       = fs.String("id", "", "stable worker name (default host-pid)")
		parallel = fs.Int("parallel", 0, "points simulated concurrently (0 = one per CPU)")
		storeDir = fs.String("store", "", "local content-addressed result store (write-through archive)")
		resume   = fs.Bool("resume", false, "serve points already archived in -store without re-simulating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL == "" {
		return fmt.Errorf("work: -coordinator is required")
	}
	if *resume && *storeDir == "" {
		return fmt.Errorf("-resume recalls archived results and requires -store")
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var store *resultstore.Store
	if *storeDir != "" {
		var err error
		if store, err = resultstore.Open(*storeDir); err != nil {
			return err
		}
		store.SetVersion(engine.CodeVersion)
	}
	w := &sweepd.Worker{
		ID:      *id,
		BaseURL: strings.TrimSuffix(*coordURL, "/"),
		Resolve: func(spec sweepd.PlanSpec) (engine.Plan, error) {
			plan, _, err := resolveSpec(spec)
			return plan, err
		},
		Parallel: *parallel,
		Store:    store,
		Reuse:    *resume,
		Log:      trace.NewSyncWriter(stderr),
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return w.Run(ctx)
}

// runStore is the `sweep store` subcommand group. Its one verb, gc,
// prunes archived envelopes whose embedded version stamp no longer
// matches this binary's engine.CodeVersion — entries a resumed sweep
// could never reuse — and sweeps crashed Puts' orphaned temp files.
func runStore(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 || args[0] != "gc" {
		fmt.Fprintln(stderr, "usage: sweep store gc -store DIR [-dry-run]")
		return fmt.Errorf("store: unknown verb %q (want gc)", strings.Join(args, " "))
	}
	fs := flag.NewFlagSet("sweep store gc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		storeDir = fs.String("store", "", "result store directory to collect (required)")
		dryRun   = fs.Bool("dry-run", false, "report what would be pruned without removing anything")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("store gc: -store is required")
	}
	st, err := resultstore.Open(*storeDir)
	if err != nil {
		return err
	}
	got, err := st.GC(engine.CodeVersion, *dryRun)
	if err != nil {
		return err
	}
	verb := "pruned"
	if *dryRun {
		verb = "would prune"
	}
	fmt.Fprintf(stdout, "store gc: kept %d current objects; %s %d stale objects (%d bytes) and %d orphaned temp files [version %s]\n",
		got.Kept, verb, got.Pruned, got.PrunedBytes, got.Temps, engine.CodeVersion)
	return nil
}
