package main

import (
	"bytes"
	"testing"
	"time"

	"tokencoherence/internal/engine"
)

// fakeClock advances a telemetry's injectable clock by fixed steps.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) tick(d time.Duration) { c.t = c.t.Add(d) }
func secs(t *telemetry) (eta, elapsed float64) {
	return t.etaSeconds.Value(), t.elapsedSec.Value()
}

// TestTelemetryETAFoldsWorkers replays a synthetic sweep — 8 points on
// 4 workers, the completion stream a pipelined pool produces (first
// finish after the ~4s ramp, then one per second as workers free up) —
// through the ETA model. The worker-aware estimate must stay within a
// factor of two of the true remaining wall time at every report; the
// old worker-blind elapsed/done model fails that immediately, reading
// 28s at the first completion against a truth of 7s (4× off — exactly
// the -parallel factor the bug report describes).
func TestTelemetryETAFoldsWorkers(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	tel := newTelemetry(4, clock.now)

	finish := []time.Duration{4 * time.Second, 5 * time.Second, 6 * time.Second, 7 * time.Second,
		8 * time.Second, 9 * time.Second, 10 * time.Second, 11 * time.Second}
	for i, at := range finish {
		clock.t = time.Unix(1000, 0).Add(at)
		tel.update(engine.Progress{Done: i + 1, Total: 8})
		eta, elapsed := secs(tel)
		if want := at.Seconds(); elapsed != want {
			t.Fatalf("after point %d: elapsed = %v, want %v", i+1, elapsed, want)
		}
		truth := (finish[len(finish)-1] - at).Seconds()
		if truth == 0 {
			if eta != 0 {
				t.Errorf("eta after the last point = %v, want 0", eta)
			}
			continue
		}
		if eta > 2*truth || eta < truth/2 {
			t.Errorf("after point %d: eta = %.2fs, outside [%.2f, %.2f] around true remaining %.2fs",
				i+1, eta, truth/2, 2*truth, truth)
		}
	}
}

// TestTelemetryETARampFirstCompletion pins the exact factor at the
// sharpest point of the old bug: 1 of 16 points done on 8 workers after
// 4s. The naive estimate is 4/1×15 = 60s; folding the worker count in
// scales it by min(done,workers)/workers = 1/8, giving 7.5s — within a
// point's cost of the true 7s (two full waves of 8 remain).
func TestTelemetryETARampFirstCompletion(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tel := newTelemetry(8, clock.now)
	clock.tick(4 * time.Second)
	tel.update(engine.Progress{Done: 1, Total: 16})
	if eta, _ := secs(tel); eta != 7.5 {
		t.Errorf("eta = %v, want 7.5 (naive estimate would be 60)", eta)
	}
}

// TestTelemetryETAWorkersCappedByTotal checks a pool wider than the
// plan: 4 points on 16 workers all finish in one wave, and the ramp
// factor must divide by the 4 points that can actually run — not by 16,
// which would underestimate a two-wave plan's remainder 4×.
func TestTelemetryETAWorkersCappedByTotal(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tel := newTelemetry(16, clock.now)
	clock.tick(4 * time.Second)
	tel.update(engine.Progress{Done: 2, Total: 4})
	// elapsed/done × remaining × done/min(workers,total) = 4/2 × 2 × 2/4 = 2s.
	if eta, _ := secs(tel); eta != 2 {
		t.Errorf("eta = %v, want 2", eta)
	}
}

// TestTelemetrySecondSweepKeepsFirstCounting is the regression test for
// the expvar wipe: starting a second sweep's telemetry while the first
// still runs must not clear or corrupt the first sweep's counters — the
// first instance keeps accumulating on its own values, and the
// published map simply hands the keys to the newest sweep.
func TestTelemetrySecondSweepKeepsFirstCounting(t *testing.T) {
	var log bytes.Buffer
	first, err := startTelemetry("127.0.0.1:0", 2, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer first.stop()
	first.update(engine.Progress{Done: 3, Total: 10, Failed: 1})
	if got := first.done.Value(); got != 3 {
		t.Fatalf("first sweep done = %d, want 3", got)
	}

	second, err := startTelemetry("127.0.0.1:0", 2, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer second.stop()

	// The old code called Init() on the shared map here, which zeroed
	// the first sweep's published counters mid-run. The first instance
	// must still hold — and keep updating — its own values.
	if got := first.done.Value(); got != 3 {
		t.Errorf("starting a second sweep reset the first sweep's done to %d", got)
	}
	first.update(engine.Progress{Done: 4, Total: 10, Failed: 1})
	if got := first.done.Value(); got != 4 {
		t.Errorf("first sweep stopped counting after second started: done = %d", got)
	}

	// The shared expvar map now belongs to the second sweep.
	second.update(engine.Progress{Done: 1, Total: 5})
	m := sweepVars()
	if got := second.done.Value(); got != 1 {
		t.Errorf("second sweep done = %d, want 1", got)
	}
	if m.Get("points_done") != &second.done {
		t.Error("published points_done is not the newest sweep's counter")
	}
}
