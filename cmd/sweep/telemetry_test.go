package main

import (
	"bytes"
	"math"
	"testing"
	"time"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/stats"
)

// snapshotWithEvents builds a metric snapshot reporting n executed
// events, the shape telemetry reads off each completed result.
func snapshotWithEvents(t *testing.T, n float64) *stats.Snapshot {
	t.Helper()
	ms := stats.NewMetricSet()
	ms.Gauge(stats.Desc{Name: "events_executed", Unit: "events", Help: "test"}).Set(n)
	return ms.Snapshot()
}

// fakeClock advances a telemetry's injectable clock by fixed steps.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) tick(d time.Duration) { c.t = c.t.Add(d) }
func secs(t *telemetry) (eta, elapsed float64) {
	return t.etaSeconds.Value(), t.elapsedSec.Value()
}

// TestTelemetryETAFoldsWorkers replays a synthetic sweep — 8 points on
// 4 workers, the completion stream a pipelined pool produces (first
// finish after the ~4s ramp, then one per second as workers free up) —
// through the ETA model. The worker-aware estimate must stay within a
// factor of two of the true remaining wall time at every report; the
// old worker-blind elapsed/done model fails that immediately, reading
// 28s at the first completion against a truth of 7s (4× off — exactly
// the -parallel factor the bug report describes).
func TestTelemetryETAFoldsWorkers(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	tel := newTelemetry(4, clock.now)

	finish := []time.Duration{4 * time.Second, 5 * time.Second, 6 * time.Second, 7 * time.Second,
		8 * time.Second, 9 * time.Second, 10 * time.Second, 11 * time.Second}
	for i, at := range finish {
		clock.t = time.Unix(1000, 0).Add(at)
		tel.update(engine.Progress{Done: i + 1, Total: 8})
		eta, elapsed := secs(tel)
		if want := at.Seconds(); elapsed != want {
			t.Fatalf("after point %d: elapsed = %v, want %v", i+1, elapsed, want)
		}
		truth := (finish[len(finish)-1] - at).Seconds()
		if truth == 0 {
			if eta != 0 {
				t.Errorf("eta after the last point = %v, want 0", eta)
			}
			continue
		}
		if eta > 2*truth || eta < truth/2 {
			t.Errorf("after point %d: eta = %.2fs, outside [%.2f, %.2f] around true remaining %.2fs",
				i+1, eta, truth/2, 2*truth, truth)
		}
	}
}

// TestTelemetryETARampFirstCompletion pins the exact factor at the
// sharpest point of the old bug: 1 of 16 points done on 8 workers after
// 4s. The naive estimate is 4/1×15 = 60s; folding the worker count in
// scales it by min(done,workers)/workers = 1/8, giving 7.5s — within a
// point's cost of the true 7s (two full waves of 8 remain).
func TestTelemetryETARampFirstCompletion(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tel := newTelemetry(8, clock.now)
	clock.tick(4 * time.Second)
	tel.update(engine.Progress{Done: 1, Total: 16})
	if eta, _ := secs(tel); eta != 7.5 {
		t.Errorf("eta = %v, want 7.5 (naive estimate would be 60)", eta)
	}
}

// TestTelemetryETAWorkersCappedByTotal checks a pool wider than the
// plan: 4 points on 16 workers all finish in one wave, and the ramp
// factor must divide by the 4 points that can actually run — not by 16,
// which would underestimate a two-wave plan's remainder 4×.
func TestTelemetryETAWorkersCappedByTotal(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tel := newTelemetry(16, clock.now)
	clock.tick(4 * time.Second)
	tel.update(engine.Progress{Done: 2, Total: 4})
	// elapsed/done × remaining × done/min(workers,total) = 4/2 × 2 × 2/4 = 2s.
	if eta, _ := secs(tel); eta != 2 {
		t.Errorf("eta = %v, want 2", eta)
	}
}

// TestTelemetryETADiscountsCachedPoints replays a resumed sweep: 16
// points on 2 workers, the first 8 recalled from the result store
// within 100ms, then computed points landing one per second. At the
// first computed completion the naive elapsed/done rate would read
// 1.1/9 ≈ 0.12 s/point and forecast under a second of work, while seven
// full simulations (~4s of wall time on 2 workers) actually remain.
// Subtracting cache hits from the rate keeps the estimate honest.
func TestTelemetryETADiscountsCachedPoints(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tel := newTelemetry(2, clock.now)

	cached := engine.Result{Cached: true}
	for i := 0; i < 8; i++ {
		clock.t = time.Unix(0, int64(i+1)*10_000_000) // 10ms per recall
		tel.update(engine.Progress{Done: i + 1, Total: 16, Last: &cached})
		if eta, _ := secs(tel); eta != 0 {
			t.Fatalf("after %d pure cache hits: eta = %v, want 0 (nothing simulated yet)", i+1, eta)
		}
	}
	if got := tel.cached.Value(); got != 8 {
		t.Fatalf("cached = %d, want 8", got)
	}

	computed := engine.Result{}
	clock.t = time.Unix(0, 0).Add(1100 * time.Millisecond)
	tel.update(engine.Progress{Done: 9, Total: 16, Last: &computed})
	// computed = 1, ramp = min(1,2)/2: eta = 1.1/1 × 7 × 0.5 = 3.85s —
	// the right order of magnitude for 7 points on 2 workers.
	if eta, _ := secs(tel); math.Abs(eta-3.85) > 1e-9 {
		t.Errorf("first computed point: eta = %v, want 3.85 (naive hit-blind estimate would be ~0.86)", eta)
	}

	// Steady state: completions 10..16 arrive one per second.
	for done := 10; done <= 16; done++ {
		clock.t = time.Unix(0, 0).Add(1100*time.Millisecond + time.Duration(done-9)*time.Second)
		tel.update(engine.Progress{Done: done, Total: 16, Last: &computed})
		eta, _ := secs(tel)
		truth := float64(16 - done) // one completion per second from here
		if done == 16 {
			if eta != 0 {
				t.Errorf("after the last point: eta = %v, want 0", eta)
			}
			continue
		}
		if eta > 2*truth || eta < truth/2 {
			t.Errorf("after point %d: eta = %.2fs, outside [%.2f, %.2f] around true remaining %.2fs",
				done, eta, truth/2, 2*truth, truth)
		}
	}
}

// TestTelemetryCachedPointsSkipEventCounters: a recalled result carries
// the original run's events_executed metric, but this process never
// executed those events — the live rate counters must not absorb them.
func TestTelemetryCachedPointsSkipEventCounters(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tel := newTelemetry(1, clock.now)
	snap := snapshotWithEvents(t, 5000)
	clock.tick(time.Second)
	tel.update(engine.Progress{Done: 1, Total: 2, Last: &engine.Result{Cached: true, Metrics: snap}})
	if got := tel.events.Value(); got != 0 {
		t.Errorf("cached point added %d events to the live counter", got)
	}
	tel.update(engine.Progress{Done: 2, Total: 2, Last: &engine.Result{Metrics: snap}})
	if got := tel.events.Value(); got != 5000 {
		t.Errorf("computed point events = %d, want 5000", got)
	}
}

// TestTelemetrySecondSweepKeepsFirstCounting is the regression test for
// the expvar wipe: starting a second sweep's telemetry while the first
// still runs must not clear or corrupt the first sweep's counters — the
// first instance keeps accumulating on its own values, and the
// published map simply hands the keys to the newest sweep.
func TestTelemetrySecondSweepKeepsFirstCounting(t *testing.T) {
	var log bytes.Buffer
	first, err := startTelemetry("127.0.0.1:0", 2, nil, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer first.stop()
	first.update(engine.Progress{Done: 3, Total: 10, Failed: 1})
	if got := first.done.Value(); got != 3 {
		t.Fatalf("first sweep done = %d, want 3", got)
	}

	second, err := startTelemetry("127.0.0.1:0", 2, nil, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer second.stop()

	// The old code called Init() on the shared map here, which zeroed
	// the first sweep's published counters mid-run. The first instance
	// must still hold — and keep updating — its own values.
	if got := first.done.Value(); got != 3 {
		t.Errorf("starting a second sweep reset the first sweep's done to %d", got)
	}
	first.update(engine.Progress{Done: 4, Total: 10, Failed: 1})
	if got := first.done.Value(); got != 4 {
		t.Errorf("first sweep stopped counting after second started: done = %d", got)
	}

	// The shared expvar map now belongs to the second sweep.
	second.update(engine.Progress{Done: 1, Total: 5})
	m := sweepVars()
	if got := second.done.Value(); got != 1 {
		t.Errorf("second sweep done = %d, want 1", got)
	}
	if m.Get("points_done") != &second.done {
		t.Error("published points_done is not the newest sweep's counter")
	}
}
