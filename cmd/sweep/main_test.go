package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepKindsSmoke(t *testing.T) {
	for _, kind := range []string{"bandwidth", "tokens", "mshr"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			var out, errw bytes.Buffer
			args := []string{"-kind", kind, "-workload", "apache",
				"-ops", "120", "-warmup", "120", "-parallel", "2"}
			if err := run(args, &out, &errw); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(out.String()), "\n")
			if len(lines) < 2 {
				t.Fatalf("sweep emitted %d lines, want header + rows:\n%s", len(lines), out.String())
			}
			if !strings.Contains(lines[0], "cycles_per_txn") {
				t.Fatalf("missing CSV header: %s", lines[0])
			}
		})
	}
}

func TestSweepJSONFormat(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-kind", "tokens", "-workload", "apache",
		"-ops", "130", "-warmup", "130", "-format", "json", "-progress"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"protocol":"tokenb"`) {
		t.Fatalf("unexpected JSONL output:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "points") {
		t.Fatalf("progress not reported on stderr: %q", errw.String())
	}
}

func TestSweepBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-kind", "bogus"}, &out, &errw); err == nil {
		t.Fatal("unknown sweep kind did not error")
	}
	if err := run([]string{"-format", "xml"}, &out, &errw); err == nil {
		t.Fatal("unknown format did not error")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errw); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

func TestSweepListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Sweep kinds plus the registry's protocols, topologies, and
	// workloads must all be enumerated.
	for _, want := range []string{
		"sweep kinds:", "bandwidth", "procs", "tokens", "mshr",
		"protocols:", "tokenb", "snooping", "directory", "hammer", "tokend", "tokenm",
		"topologies:", "torus", "tree",
		"workloads:", "apache", "oltp", "specjbb", "barnes",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
	// -list must not run a sweep: no CSV rows on stdout.
	if strings.Contains(got, "cycles_per_txn") {
		t.Errorf("-list unexpectedly ran a sweep:\n%s", got)
	}
}

func TestSweepUnknownKindListsRegistered(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-kind", "bogus"}, &out, &errw)
	if err == nil {
		t.Fatal("unknown sweep kind did not error")
	}
	if !strings.Contains(err.Error(), "registered: bandwidth, procs, tokens, mshr") {
		t.Errorf("error does not list registered kinds: %v", err)
	}
}
