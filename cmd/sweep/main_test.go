package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepKindsSmoke(t *testing.T) {
	for _, kind := range []string{"bandwidth", "tokens", "mshr"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			var out, errw bytes.Buffer
			args := []string{"-kind", kind, "-workload", "apache",
				"-ops", "120", "-warmup", "120", "-parallel", "2"}
			if err := run(args, &out, &errw); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(out.String()), "\n")
			if len(lines) < 2 {
				t.Fatalf("sweep emitted %d lines, want header + rows:\n%s", len(lines), out.String())
			}
			if !strings.Contains(lines[0], "cycles_per_txn") {
				t.Fatalf("missing CSV header: %s", lines[0])
			}
		})
	}
}

func TestSweepJSONFormat(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-kind", "tokens", "-workload", "apache",
		"-ops", "130", "-warmup", "130", "-format", "json", "-progress"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"protocol":"tokenb"`) {
		t.Fatalf("unexpected JSONL output:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "points") {
		t.Fatalf("progress not reported on stderr: %q", errw.String())
	}
}

func TestSweepBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-kind", "bogus"}, &out, &errw); err == nil {
		t.Fatal("unknown sweep kind did not error")
	}
	if err := run([]string{"-format", "xml"}, &out, &errw); err == nil {
		t.Fatal("unknown format did not error")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errw); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

func TestSweepListFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Sweep kinds plus the registry's protocols, topologies, and
	// workloads must all be enumerated.
	for _, want := range []string{
		"sweep kinds:", "bandwidth", "procs", "tokens", "mshr",
		"protocols:", "tokenb", "snooping[ordered-fabric]", "directory", "hammer", "tokend", "tokenm",
		"dir2[scoped]", "regionfilter[scoped]",
		"topologies:", "torus", "tree",
		"workloads:", "apache", "oltp", "specjbb", "barnes",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
	// -list must not run a sweep: no CSV rows on stdout.
	if strings.Contains(got, "cycles_per_txn") {
		t.Errorf("-list unexpectedly ran a sweep:\n%s", got)
	}
}

func TestSweepListMetricsFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list-metrics", "-kind", "bandwidth"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"cycles_per_txn", "bytes_per_miss", "reissues", "persistent_activations", "ns", "count"} {
		if !strings.Contains(got, want) {
			t.Errorf("-list-metrics output missing %q:\n%s", want, got)
		}
	}
	// -list-metrics must not run the sweep: no CSV data rows.
	if strings.Contains(got, "tokenb,") {
		t.Errorf("-list-metrics unexpectedly ran the sweep:\n%s", got)
	}
}

func TestSweepColumnsFlag(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-kind", "tokens", "-workload", "apache",
		"-ops", "130", "-warmup", "130",
		"-columns", "protocol, tokens_per_block ,misses,token_transfers"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "protocol,tokens_per_block,misses,token_transfers" {
		t.Fatalf("-columns header = %q", lines[0])
	}
	if len(lines) < 2 || !strings.HasPrefix(lines[1], "tokenb,16,") {
		t.Fatalf("-columns rows wrong:\n%s", out.String())
	}
}

func TestSweepColumnsRejectsJSONFormat(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-kind", "tokens", "-format", "json", "-columns", "protocol"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-columns") {
		t.Fatalf("-columns with -format json: err = %v, want rejection", err)
	}
}

func TestSweepColumnsRejectsUnknownNames(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-kind", "tokens", "-columns", "protocol,cycles_per_tx"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), `cycles_per_tx`) {
		t.Fatalf("typoed column: err = %v, want unknown-column rejection", err)
	}
	if err := run([]string{"-kind", "tokens", "-columns", " , "}, &out, &errw); err == nil {
		t.Fatal("all-blank -columns spec not rejected")
	}
	// Mutation tags are valid column names.
	if err := run([]string{"-kind", "tokens", "-ops", "120", "-warmup", "120",
		"-workload", "apache", "-columns", "tokens_per_block,misses"}, &out, &errw); err != nil {
		t.Fatalf("tag column rejected: %v", err)
	}
	// The validation schema unions over the sweep's protocols: the
	// bandwidth sweep mixes tokenb/directory/hammer, so each protocol's
	// own metric is selectable even though no single point has all three.
	out.Reset()
	if err := run([]string{"-kind", "bandwidth", "-ops", "120", "-warmup", "120",
		"-workload", "apache", "-columns", "protocol,reissues,dir_home_requests,hammer_home_requests"}, &out, &errw); err != nil {
		t.Fatalf("cross-protocol columns rejected: %v", err)
	}
	if lines := strings.Split(strings.TrimSpace(out.String()), "\n"); !strings.Contains(out.String(), "directory,") || len(lines) < 4 {
		t.Fatalf("cross-protocol column output wrong:\n%s", out.String())
	}
}

func TestSweepListMetricsUnionsProtocols(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list-metrics", "-kind", "bandwidth"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reissues", "dir_home_requests", "hammer_home_requests"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("unioned -list-metrics missing %q:\n%s", want, out.String())
		}
	}
}

func TestSweepUnknownKindListsRegistered(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-kind", "bogus"}, &out, &errw)
	if err == nil {
		t.Fatal("unknown sweep kind did not error")
	}
	if !strings.Contains(err.Error(), "registered: bandwidth, procs, tokens, mshr") {
		t.Errorf("error does not list registered kinds: %v", err)
	}
}
