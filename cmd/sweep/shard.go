package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tokencoherence/internal/engine"
)

// parseShardSpec parses the -shard flag's "i/N" syntax: this process
// owns the jobs whose plan index ≡ i (mod N).
func parseShardSpec(spec string) (shard, shards int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/N (e.g. 0/4)", spec)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("-shard %q: shard index must be in [0, %d)", spec, shards)
	}
	return shard, shards, nil
}

// shardLine is one line of a shard's output: the job's plan-wide index
// plus the exact JSONL record an unsharded sweep would have emitted for
// it. Carrying the index explicitly — instead of relying on line
// position — keeps merge correct when failed jobs leave gaps.
type shardLine struct {
	Index  int             `json:"index"`
	Record json.RawMessage `json:"record"`
}

// shardSink wraps the JSONL sink for sharded runs: each emitted line is
// a shardLine whose record field holds the byte-exact JSONL line. The
// merge subcommand strips the wrapper back off, so k shards merged
// reproduce the single-process output byte for byte.
type shardSink struct {
	w     io.Writer
	inner *engine.JSONLSink
	buf   bytes.Buffer
}

func newShardSink(w io.Writer) *shardSink {
	s := &shardSink{w: w}
	s.inner = &engine.JSONLSink{W: &s.buf}
	return s
}

// Begin implements engine.Sink.
func (s *shardSink) Begin(total int) error { return s.inner.Begin(total) }

// Emit implements engine.Sink: render the record through the inner
// JSONL sink, then wrap it with the job's plan index.
func (s *shardSink) Emit(r engine.Result) error {
	s.buf.Reset()
	if err := s.inner.Emit(r); err != nil {
		return err
	}
	rec := bytes.TrimSuffix(s.buf.Bytes(), []byte("\n"))
	line, err := json.Marshal(shardLine{Index: r.Index, Record: json.RawMessage(rec)})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = s.w.Write(line)
	return err
}

// End implements engine.EndSink, flushing the buffered output writer.
func (s *shardSink) End() error {
	if f, ok := s.w.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// runMerge is the `sweep merge` subcommand: it k-way merges shard
// output files back into plan order, emitting each record byte-exactly
// as the unsharded sweep would have. Duplicate indices (the same job in
// two shard files) are an error — they mean the shard specs overlapped.
func runMerge(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sweep merge shard0.jsonl shard1.jsonl ...")
		fmt.Fprintln(stderr, "merges -shard i/N output files back into plan order on stdout")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("merge: no shard files given")
	}
	records := map[int]json.RawMessage{}
	from := map[int]string{}
	for _, name := range files {
		if err := readShardFile(name, records, from); err != nil {
			return err
		}
	}
	indices := make([]int, 0, len(records))
	for i := range records {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	bw := bufio.NewWriter(stdout)
	for _, i := range indices {
		bw.Write(records[i]) //nolint:errcheck // surfaced by Flush
		bw.WriteByte('\n')   //nolint:errcheck // surfaced by Flush
	}
	return bw.Flush()
}

// readShardFile loads one shard output file into the merge index.
func readShardFile(name string, records map[int]json.RawMessage, from map[int]string) error {
	f, err := os.Open(name)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var line shardLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("merge: %s:%d: %w", name, lineno, err)
		}
		if line.Record == nil {
			return fmt.Errorf("merge: %s:%d: no record field (is this a -shard output file?)", name, lineno)
		}
		if prev, dup := from[line.Index]; dup {
			return fmt.Errorf("merge: job %d appears in both %s and %s (overlapping shard specs?)", line.Index, prev, name)
		}
		records[line.Index] = append(json.RawMessage(nil), line.Record...)
		from[line.Index] = name
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("merge: %s: %w", name, err)
	}
	return nil
}
