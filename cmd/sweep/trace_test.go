package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tokencoherence/internal/engine"
)

// runTraceSweep runs the tokens sweep with -trace into a fresh dir and
// returns the per-point file contents keyed by file name.
func runTraceSweep(t *testing.T, parallel int) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	var out, errw bytes.Buffer
	args := []string{"-kind", "tokens", "-workload", "apache",
		"-ops", "120", "-warmup", "120",
		"-parallel", fmt.Sprint(parallel), "-trace", dir}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = b
	}
	return files
}

// TestSweepTraceFiles checks -trace writes one valid Chrome trace per
// point, byte-identical whether the engine ran serial or parallel.
func TestSweepTraceFiles(t *testing.T) {
	serial := runTraceSweep(t, 1)
	if len(serial) == 0 {
		t.Fatal("-trace wrote no files")
	}
	for name, b := range serial {
		if !strings.HasPrefix(name, "point-") || !strings.HasSuffix(name, ".json") {
			t.Errorf("unexpected trace file name %q", name)
		}
		var tr struct {
			DisplayTimeUnit string            `json:"displayTimeUnit"`
			TraceEvents     []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(b, &tr); err != nil {
			t.Fatalf("%s is not valid trace JSON: %v", name, err)
		}
		if tr.DisplayTimeUnit != "ns" || len(tr.TraceEvents) == 0 {
			t.Errorf("%s: displayTimeUnit=%q, %d events", name, tr.DisplayTimeUnit, len(tr.TraceEvents))
		}
	}
	parallel := runTraceSweep(t, 3)
	if len(parallel) != len(serial) {
		t.Fatalf("file counts differ: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for name, want := range serial {
		got, ok := parallel[name]
		if !ok {
			t.Errorf("parallel run lacks %s", name)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between -parallel 1 and -parallel 3", name)
		}
	}
}

// TestSweepProgressSerialized checks per-point -progress lines from a
// parallel run arrive whole: every stderr line is either a well-formed
// point line or the final summary, never a torn interleaving.
func TestSweepProgressSerialized(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-kind", "tokens", "-workload", "apache",
		"-ops", "120", "-warmup", "120", "-parallel", "4", "-progress"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	pointLine := regexp.MustCompile(`^sweep: \d+/\d+ \S+ seed=\d+ (ok|FAILED)$`)
	summary := regexp.MustCompile(`^sweep: (\d+)/(\d+) points$`)
	lines := strings.Split(strings.TrimSuffix(errw.String(), "\n"), "\n")
	points, summaries := 0, 0
	for _, line := range lines {
		switch {
		case pointLine.MatchString(line):
			points++
		case summary.MatchString(line):
			summaries++
		default:
			t.Errorf("malformed progress line %q", line)
		}
	}
	if points == 0 || summaries != 1 {
		t.Errorf("progress emitted %d point lines and %d summaries:\n%s", points, summaries, errw.String())
	}
	m := summary.FindStringSubmatch(lines[len(lines)-1])
	if m == nil || m[1] != m[2] {
		t.Errorf("last line is not a completed summary: %q", lines[len(lines)-1])
	}
}

// TestSweepTelemetryEndpoint drives the -http telemetry directly: bind
// a free port, feed progress reports, and read the counters back over
// HTTP as any live dashboard would.
func TestSweepTelemetryEndpoint(t *testing.T) {
	var log bytes.Buffer
	tel, err := startTelemetry("127.0.0.1:0", 1, nil, &log)
	if err != nil {
		t.Fatal(err)
	}
	defer tel.stop()
	if !strings.Contains(log.String(), "telemetry on http://") {
		t.Errorf("endpoint not announced: %q", log.String())
	}
	tel.update(engine.Progress{Done: 2, Total: 8, Failed: 1})

	resp, err := http.Get("http://" + tel.addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Sweep map[string]float64 `json:"sweep"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	for key, want := range map[string]float64{
		"points_total": 8, "points_done": 2, "points_failed": 1,
	} {
		if got := vars.Sweep[key]; got != want {
			t.Errorf("sweep.%s = %v, want %v", key, got, want)
		}
	}
	if _, ok := vars.Sweep["eta_seconds"]; !ok {
		t.Error("sweep map lacks eta_seconds")
	}

	// The pprof index must be mounted on the same mux.
	resp, err = http.Get("http://" + tel.addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

// TestSweepHTTPFlag checks the -http flag wires telemetry into a real
// sweep run and announces the bound address on stderr.
func TestSweepHTTPFlag(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-kind", "tokens", "-workload", "apache",
		"-ops", "120", "-warmup", "120", "-http", "127.0.0.1:0"}
	if err := run(args, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "sweep: telemetry on http://127.0.0.1:") {
		t.Errorf("bound telemetry address not announced: %q", errw.String())
	}
	if !strings.Contains(out.String(), "cycles_per_txn") {
		t.Errorf("monitored sweep emitted no CSV:\n%s", out.String())
	}
}
