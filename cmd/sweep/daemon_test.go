package main

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"tokencoherence/internal/engine"
	"tokencoherence/internal/resultstore"
	"tokencoherence/internal/stats"
)

// announceWriter is a stderr sink that watches for the coordinator's
// "coordinator on http://..." announcement and delivers the URL once —
// how scripts (and this test) find a serve bound to port 0.
type announceWriter struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	ch   chan string
	sent bool
}

var announceRE = regexp.MustCompile(`coordinator on (http://\S+)`)

func newAnnounceWriter() *announceWriter {
	return &announceWriter{ch: make(chan string, 1)}
}

func (w *announceWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if m := announceRE.FindStringSubmatch(w.buf.String()); m != nil {
			w.sent = true
			w.ch <- m[1]
		}
	}
	return len(p), nil
}

func (w *announceWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeWorkEndToEnd drives the real subcommands end to end: `sweep
// serve` bound to port 0, two `sweep work` daemons pointed at the
// announced address, and the distributed stdout must be byte-identical
// to the same sweep run in-process.
func TestServeWorkEndToEnd(t *testing.T) {
	planArgs := []string{"-kind", "tokens", "-workload", "oltp", "-seed", "1", "-ops", "60", "-warmup", "20"}

	var ref bytes.Buffer
	if err := run(append([]string{"-format", "json"}, planArgs...), &ref, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	aw := newAnnounceWriter()
	serveErr := make(chan error, 1)
	go func() {
		// linger must outlast a worker's maximum /lease poll backoff
		// (500ms): an idle worker that wakes after the last point lands
		// needs a live socket to learn the plan is done.
		args := append([]string{"serve", "-addr", "127.0.0.1:0", "-lease", "5s", "-linger", "2s", "-format", "json"}, planArgs...)
		serveErr <- run(args, &out, aw)
	}()
	var url string
	select {
	case url = <-aw.ch:
	case err := <-serveErr:
		t.Fatalf("serve exited before announcing its address: %v\nstderr: %s", err, aw.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("serve never announced its address\nstderr: %s", aw.String())
	}

	workErr := make(chan error, 2)
	for _, id := range []string{"w1", "w2"} {
		go func(id string) {
			workErr <- run([]string{"work", "-coordinator", url, "-id", id, "-parallel", "1"}, &bytes.Buffer{}, &bytes.Buffer{})
		}(id)
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Errorf("worker: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\nstderr: %s", err, aw.String())
	}
	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Errorf("distributed output differs from in-process run:\n got: %s\nwant: %s", out.Bytes(), ref.Bytes())
	}
}

// TestStoreGCVerb: `sweep store gc` prunes entries whose version stamp
// is not this binary's engine.CodeVersion, keeps current ones, and the
// dry run reports the same counts without removing anything.
func TestStoreGCVerb(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sample := &stats.Run{Transactions: 1}
	snap := stats.NewMetricSet().Snapshot()
	st.SetVersion(engine.CodeVersion)
	if err := st.Put(strings.Repeat("aa", 32), sample, snap); err != nil {
		t.Fatal(err)
	}
	st.SetVersion("antique-version")
	if err := st.Put(strings.Repeat("bb", 32), sample, snap); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"store", "gc", "-store", dir, "-dry-run"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kept 1") || !strings.Contains(out.String(), "would prune 1 stale") {
		t.Errorf("dry-run output: %q", out.String())
	}
	if n, _ := st.Len(); n != 2 {
		t.Fatalf("dry run removed entries: Len=%d, want 2", n)
	}

	out.Reset()
	if err := run([]string{"store", "gc", "-store", dir}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pruned 1 stale") {
		t.Errorf("gc output: %q", out.String())
	}
	if n, _ := st.Len(); n != 1 {
		t.Errorf("after gc: Len=%d, want 1", n)
	}

	if err := run([]string{"store", "frobnicate"}, &out, &bytes.Buffer{}); err == nil {
		t.Error("want error for unknown store verb")
	}
	if err := run([]string{"store", "gc"}, &out, &bytes.Buffer{}); err == nil {
		t.Error("want error for store gc without -store")
	}
}

// TestWorkFlagValidation: work without a coordinator, and resume without
// a store, are caught before any network traffic.
func TestWorkFlagValidation(t *testing.T) {
	if err := run([]string{"work"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-coordinator") {
		t.Errorf("work without -coordinator: %v", err)
	}
	if err := run([]string{"work", "-coordinator", "http://x", "-resume"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Errorf("work -resume without -store: %v", err)
	}
	if err := run([]string{"serve", "-resume"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Errorf("serve -resume without -store: %v", err)
	}
}

// TestShardWarningOnOversizedSpec: splitting a plan more ways than it
// has points used to silently emit empty shard files; now it warns.
func TestShardWarningOnOversizedSpec(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-kind", "tokens", "-ops", "40", "-warmup", "0", "-format", "json", "-shard", "0/100"}, &out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBuf.String(), "will be empty") {
		t.Errorf("no empty-shard warning on stderr: %q", errBuf.String())
	}
	// A right-sized spec stays quiet.
	errBuf.Reset()
	if err := run([]string{"-kind", "tokens", "-ops", "40", "-warmup", "0", "-format", "json", "-shard", "0/2"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errBuf.String(), "will be empty") {
		t.Errorf("spurious empty-shard warning: %q", errBuf.String())
	}
}

// TestTelemetryETATracksLiveWorkers: when a progress report carries its
// own live capacity (a distributed coordinator's worker count), the ETA
// divides by that — not by the static pool size the telemetry was
// started with.
func TestTelemetryETATracksLiveWorkers(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	tel := newTelemetry(16, clock.now)
	clock.tick(4 * time.Second)
	tel.update(engine.Progress{Done: 2, Total: 4, Workers: 2})
	// elapsed/done × remaining × min(done, workers)/workers with the
	// report's 2 live workers: 4/2 × 2 × 2/2 = 4s. The static pool of 16
	// would have read 2s (see TestTelemetryETAWorkersCappedByTotal).
	if eta, _ := secs(tel); eta != 4 {
		t.Errorf("eta = %v, want 4 (live capacity ignored?)", eta)
	}
}
