package main

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"tokencoherence/internal/engine"
)

// sweepVarsOnce guards the process-wide "sweep" expvar map: expvar
// panics on a duplicate Publish, and tests run several sweeps in one
// process, so the map is published exactly once. Each telemetry
// instance Sets its own value objects into the map under the fixed key
// names — the newest sweep owns what readers see, while an earlier
// sweep's update loop keeps writing its own (now unpublished) values
// untouched. The map is never Init()ed after publication: that would
// wipe a running sweep's counters out from under its HTTP readers.
var sweepVarsOnce struct {
	sync.Once
	m *expvar.Map
}

func sweepVars() *expvar.Map {
	sweepVarsOnce.Do(func() { sweepVarsOnce.m = expvar.NewMap("sweep") })
	return sweepVarsOnce.m
}

// telemetry is the -http endpoint: live sweep counters as expvar at
// /debug/vars and the standard pprof profiles at /debug/pprof/, served
// while the sweep runs. The simulation itself is untouched — telemetry
// reads the engine's progress reports, so a monitored sweep emits the
// same rows as an unmonitored one.
type telemetry struct {
	srv     *http.Server
	ln      net.Listener
	start   time.Time
	workers int
	now     func() time.Time // injectable clock for tests

	total, done, failed, cached, events  expvar.Int
	eventsPerSec, etaSeconds, elapsedSec expvar.Float
}

// storeStats is the slice of *resultstore.Store the telemetry endpoint
// exports: live archive counters, without coupling this package's tests
// to a real store.
type storeStats interface {
	Hits() uint64
	Misses() uint64
	Bytes() uint64
}

// newTelemetry builds the progress-consuming core without binding a
// socket, for tests that feed synthetic Progress sequences.
func newTelemetry(workers int, now func() time.Time) *telemetry {
	if now == nil {
		now = time.Now
	}
	return &telemetry{start: now(), workers: workers, now: now}
}

// startTelemetry binds addr (":0" picks a free port), publishes the
// counters, and serves until stop. workers is the engine's effective
// pool size, which the ETA model needs (see update); store, when
// non-nil, additionally exports the result store's live hit/miss/byte
// counters. The chosen address is announced on logw so callers binding
// port 0 can find the endpoint.
func startTelemetry(addr string, workers int, store storeStats, logw io.Writer) (*telemetry, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	t := newTelemetry(workers, nil)
	t.ln = ln
	m := sweepVars()
	m.Set("points_total", &t.total)
	m.Set("points_done", &t.done)
	m.Set("points_failed", &t.failed)
	m.Set("points_cached", &t.cached)
	m.Set("events_executed", &t.events)
	if store != nil {
		m.Set("store_hits", expvar.Func(func() any { return store.Hits() }))
		m.Set("store_misses", expvar.Func(func() any { return store.Misses() }))
		m.Set("store_bytes", expvar.Func(func() any { return store.Bytes() }))
	}
	m.Set("events_per_sec", &t.eventsPerSec)
	m.Set("eta_seconds", &t.etaSeconds)
	m.Set("elapsed_seconds", &t.elapsedSec)

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	t.srv = &http.Server{Handler: mux}
	go t.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed at stop
	if logw != nil {
		fmt.Fprintf(logw, "sweep: telemetry on http://%s/debug/vars\n", ln.Addr())
	}
	return t, nil
}

// addr reports the bound address (resolving ":0" to the chosen port).
func (t *telemetry) addr() string { return t.ln.Addr().String() }

// update consumes one engine progress report. It runs on the engine's
// single collector goroutine; each expvar value is individually atomic,
// so HTTP readers need no further synchronization.
//
// ETA extrapolates wall-clock time per completed point over the plan's
// deterministic job count — the total is known before the first point
// finishes, which is what makes the estimate possible at all. The
// naive elapsed/done rate overestimates throughput's inverse by up to
// the worker count early on: with W workers, the first completion
// arrives after roughly one full point's wall time even though W points
// are nearly done, so elapsed/done ≈ W times the steady-state per-point
// cost. The min(done, W)/W factor discounts the estimate during that
// ramp and becomes exact (1.0) once a full wave of points has finished.
//
// Store cache hits are excluded from the rate estimate on both sides: a
// recalled point completes in microseconds and executes no events, so
// folding it into elapsed/done would collapse the ETA toward zero while
// every not-yet-archived point still costs full simulation time. The
// per-point rate divides by computed = done − cached, and a sweep whose
// completions are so far all cache hits reports ETA 0 — the honest
// reading when nothing has been simulated yet.
func (t *telemetry) update(p engine.Progress) {
	t.total.Set(int64(p.Total))
	t.done.Set(int64(p.Done))
	t.failed.Set(int64(p.Failed))
	if p.Last != nil && p.Last.Cached {
		t.cached.Add(1)
	}
	if p.Last != nil && p.Last.Metrics != nil && !p.Last.Cached {
		if v, ok := p.Last.Metrics.Value("events_executed"); ok {
			t.events.Add(int64(v))
		}
	}
	elapsed := t.now().Sub(t.start).Seconds()
	t.elapsedSec.Set(elapsed)
	if elapsed > 0 {
		t.eventsPerSec.Set(float64(t.events.Value()) / elapsed)
	}
	computed := p.Done - int(t.cached.Value())
	if computed > 0 {
		// Prefer the report's own live capacity — a distributed
		// coordinator's worker count changes as daemons join and die, and
		// the ETA must track it; fall back to the static pool size.
		w := p.Workers
		if w < 1 {
			w = t.workers
		}
		if w < 1 {
			w = 1
		}
		if w > p.Total {
			w = p.Total
		}
		ramp := float64(min(computed, w)) / float64(w)
		t.etaSeconds.Set(elapsed / float64(computed) * float64(p.Total-p.Done) * ramp)
	} else {
		t.etaSeconds.Set(0)
	}
}

// stop closes the listener and server; in-flight requests are cut off,
// which is fine for a debug endpoint.
func (t *telemetry) stop() { t.srv.Close() } //nolint:errcheck // best effort
