package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepArgs are a small, fast plan shared by the store tests.
func sweepArgs(extra ...string) []string {
	return append([]string{"-kind", "tokens", "-workload", "apache",
		"-ops", "120", "-warmup", "120", "-parallel", "2"}, extra...)
}

// TestSweepStoreResumeByteIdentity is the command-level resume
// guarantee: a sweep archived with -store and re-run with -resume must
// emit byte-identical output without recomputing anything (the second
// run's rows all come from the archive).
func TestSweepStoreResumeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	var out1, out2, errw bytes.Buffer
	if err := run(sweepArgs("-store", dir), &out1, &errw); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("store not populated: %v entries, err %v", len(entries), err)
	}
	if err := run(sweepArgs("-store", dir, "-resume"), &out2, &errw); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("resumed output differs from computed output:\n%s\nvs\n%s", out1.String(), out2.String())
	}
}

// TestSweepShardMergeEquivalence runs the same plan unsharded and as
// two shards, then merges the shard files: the merged stream must be
// byte-identical to the single-process JSONL output.
func TestSweepShardMergeEquivalence(t *testing.T) {
	var whole, errw bytes.Buffer
	if err := run(sweepArgs("-format", "json"), &whole, &errw); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files := make([]string, 2)
	for shard := 0; shard < 2; shard++ {
		var out bytes.Buffer
		spec := []string{"0/2", "1/2"}[shard]
		if err := run(sweepArgs("-format", "json", "-shard", spec), &out, &errw); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), `"index":`) {
			t.Fatalf("shard %d output is not index-wrapped:\n%s", shard, out.String())
		}
		files[shard] = filepath.Join(dir, spec[:1]+".jsonl")
		if err := os.WriteFile(files[shard], out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var merged bytes.Buffer
	// Shard files in reverse order: merge must restore plan order itself.
	if err := run([]string{"merge", files[1], files[0]}, &merged, &errw); err != nil {
		t.Fatal(err)
	}
	if merged.String() != whole.String() {
		t.Errorf("merged shard output differs from single-process run:\n%s\nvs\n%s",
			merged.String(), whole.String())
	}
}

// TestSweepMergeRejectsOverlap: feeding merge the same shard file twice
// means two processes claimed the same jobs — a misconfiguration that
// must fail loudly instead of silently duplicating rows.
func TestSweepMergeRejectsOverlap(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(sweepArgs("-format", "json", "-shard", "0/2"), &out, &errw); err != nil {
		t.Fatal(err)
	}
	f := filepath.Join(t.TempDir(), "s0.jsonl")
	if err := os.WriteFile(f, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	err := run([]string{"merge", f, f}, &merged, &errw)
	if err == nil || !strings.Contains(err.Error(), "appears in both") {
		t.Errorf("want overlapping-shard error, got %v", err)
	}
}

// TestSweepStoreFlagValidation pins the flag interactions.
func TestSweepStoreFlagValidation(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-resume"}, &out, &errw); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Errorf("-resume without -store: got %v", err)
	}
	if err := run([]string{"-shard", "0/2"}, &out, &errw); err == nil || !strings.Contains(err.Error(), "json") {
		t.Errorf("-shard with default CSV format: got %v", err)
	}
	for _, spec := range []string{"2/2", "-1/2", "x/y", "3"} {
		if err := run([]string{"-shard", spec, "-format", "json"}, &out, &errw); err == nil {
			t.Errorf("-shard %s: want error", spec)
		}
	}
	if err := run([]string{"merge"}, &out, &errw); err == nil || !strings.Contains(err.Error(), "no shard files") {
		t.Errorf("merge without files: got %v", err)
	}
}
