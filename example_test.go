package tokencoherence_test

import (
	"fmt"

	"tokencoherence"
)

// ExampleSimulate is the package's compiled quick start: run one
// simulation point and read its headline statistics. The run is
// deterministic, audited for token conservation, and checked by the
// coherence oracle.
func ExampleSimulate() {
	run, err := tokencoherence.Simulate(tokencoherence.Point{
		Protocol: tokencoherence.ProtoTokenB,
		Topo:     tokencoherence.TopoTorus,
		Workload: "oltp",
		Procs:    8,
		Ops:      500,
		Warmup:   1000,
		Seed:     1,
	})
	if err != nil {
		// A non-nil error includes token-conservation audit and
		// coherence-oracle violations.
		fmt.Println("simulate:", err)
		return
	}
	fmt.Println("made progress:", run.Transactions > 0 && run.Misses.Issued > 0)
	fmt.Println("finite metrics:", run.CyclesPerTransaction() > 0 && run.BytesPerMiss() > 0)
	// Output:
	// made progress: true
	// finite metrics: true
}
